package iss_test

import (
	"testing"

	"symriscv/internal/core"
	"symriscv/internal/iss"
	"symriscv/internal/riscv"
	"symriscv/internal/smt"
)

// progMem serves a concrete program; unmapped addresses fetch a NOP.
type progMem struct {
	ctx   *smt.Context
	words map[uint32]uint32
}

func (m *progMem) Fetch(addr uint32) *smt.Term {
	if w, ok := m.words[addr]; ok {
		return m.ctx.BV(32, uint64(w))
	}
	return m.ctx.BV(32, uint64(riscv.ADDI(0, 0, 0)))
}

// byteMem is a concrete byte memory.
type byteMem struct {
	ctx   *smt.Context
	bytes map[uint32]uint8
}

func (m *byteMem) get(addr uint32) uint8 { return m.bytes[addr] }
func (m *byteMem) LoadByte(addr uint32) *smt.Term {
	return m.ctx.BV(8, uint64(m.get(addr)))
}
func (m *byteMem) LoadHalf(addr uint32) *smt.Term {
	return m.ctx.BV(16, uint64(m.get(addr))|uint64(m.get(addr+1))<<8)
}
func (m *byteMem) LoadWord(addr uint32) *smt.Term {
	var v uint64
	for i := uint32(0); i < 4; i++ {
		v |= uint64(m.get(addr+i)) << (8 * i)
	}
	return m.ctx.BV(32, v)
}
func (m *byteMem) StoreByte(addr uint32, v *smt.Term) { m.bytes[addr] = uint8(v.ConstVal()) }
func (m *byteMem) StoreHalf(addr uint32, v *smt.Term) {
	m.bytes[addr] = uint8(v.ConstVal())
	m.bytes[addr+1] = uint8(v.ConstVal() >> 8)
}
func (m *byteMem) StoreWord(addr uint32, v *smt.Term) {
	for i := uint32(0); i < 4; i++ {
		m.bytes[addr+i] = uint8(v.ConstVal() >> (8 * i))
	}
}

type fixture struct {
	results []iss.Result
	mem     map[uint32]uint8
}

// run executes a concrete program on the ISS inside a single-path
// exploration and returns the per-step results.
func run(t *testing.T, cfg iss.Config, words []uint32, regs map[int]uint32, steps int, preMem map[uint32]uint8) fixture {
	t.Helper()
	var fx fixture
	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		pm := &progMem{ctx: ctx, words: map[uint32]uint32{}}
		for i, w := range words {
			pm.words[uint32(4*i)] = w
		}
		bm := &byteMem{ctx: ctx, bytes: map[uint32]uint8{}}
		for a, v := range preMem {
			bm.bytes[a] = v
		}
		s := iss.New(e, pm, bm, cfg)
		for i, v := range regs {
			s.SetReg(i, ctx.BV(32, uint64(v)))
		}
		fx.results = nil
		for i := 0; i < steps; i++ {
			fx.results = append(fx.results, s.Step())
		}
		fx.mem = bm.bytes
		return nil
	})
	rep := x.Explore(core.Options{})
	if rep.Stats.Completed != 1 || rep.Stats.Paths != 1 {
		t.Fatalf("concrete program should execute on exactly one path: %v", rep.Stats)
	}
	return fx
}

func cval(t *testing.T, term *smt.Term) uint32 {
	t.Helper()
	if term == nil {
		t.Fatal("nil term")
	}
	if !term.IsConst() {
		t.Fatalf("term not concrete: %v", term)
	}
	return uint32(term.ConstVal())
}

func TestALUSemantics(t *testing.T) {
	regs := map[int]uint32{1: 0xffff_fff6, 2: 7} // x1 = -10, x2 = 7
	cases := []struct {
		word uint32
		want uint32
	}{
		{riscv.ADD(3, 1, 2), 0xffff_fffd},
		{riscv.SUB(3, 1, 2), 0xffff_ffef},
		{riscv.AND(3, 1, 2), 6},
		{riscv.OR(3, 1, 2), 0xffff_fff7},
		{riscv.XOR(3, 1, 2), 0xffff_fff1},
		{riscv.SLT(3, 1, 2), 1},
		{riscv.SLTU(3, 1, 2), 0},
		{riscv.SLL(3, 1, 2), 0xffff_fb00}, // -10 << 7
		{riscv.SRL(3, 1, 2), 0x01ff_ffff},
		{riscv.SRA(3, 1, 2), 0xffff_ffff},
		{riscv.ADDI(3, 1, -5), 0xffff_fff1},
		{riscv.SLTI(3, 1, 0), 1},
		{riscv.SLTIU(3, 1, -1), 1},
		{riscv.XORI(3, 1, 0xff), 0xffff_ff09},
		{riscv.ORI(3, 2, 0x30), 0x37},
		{riscv.ANDI(3, 1, 0xff), 0xf6},
		{riscv.SLLI(3, 2, 4), 0x70},
		{riscv.SRLI(3, 1, 28), 0xf},
		{riscv.SRAI(3, 1, 4), 0xffff_ffff},
		{riscv.LUI(3, 0x12345000), 0x12345000},
		{riscv.AUIPC(3, 0x1000), 0x1000},
	}
	for _, tc := range cases {
		fx := run(t, iss.FixedConfig(), []uint32{tc.word}, regs, 1, nil)
		r := fx.results[0]
		if r.Trap {
			t.Errorf("%s: unexpected trap", riscv.Disasm(tc.word))
			continue
		}
		if r.RdAddr != 3 {
			t.Errorf("%s: rd = %d", riscv.Disasm(tc.word), r.RdAddr)
			continue
		}
		if got := cval(t, r.RdValue); got != tc.want {
			t.Errorf("%s: x3 = %#x, want %#x", riscv.Disasm(tc.word), got, tc.want)
		}
	}
}

func TestSLLOf(t *testing.T) {
	// Fixup for the SLL row above: (-10) << 7 = 0xfffffb00.
	fx := run(t, iss.FixedConfig(), []uint32{riscv.SLL(3, 1, 2)}, map[int]uint32{1: 0xfffffff6, 2: 7}, 1, nil)
	if got := cval(t, fx.results[0].RdValue); got != 0xfffffb00 {
		t.Errorf("sll: got %#x, want 0xfffffb00", got)
	}
}

func TestControlFlow(t *testing.T) {
	regs := map[int]uint32{1: 5, 2: 5, 3: 9}
	cases := []struct {
		word   uint32
		nextPC uint32
	}{
		{riscv.BEQ(1, 2, 64), 64},
		{riscv.BNE(1, 2, 64), 4},
		{riscv.BNE(1, 3, 64), 64},
		{riscv.BLT(1, 3, 64), 64},
		{riscv.BGE(1, 3, 64), 4},
		{riscv.BLTU(3, 1, 64), 4},
		{riscv.BGEU(3, 1, 64), 64},
		{riscv.JAL(5, 100), 100},
		{riscv.JALR(5, 3, 100), 108}, // (9+100)&~1
	}
	for _, tc := range cases {
		fx := run(t, iss.FixedConfig(), []uint32{tc.word}, regs, 1, nil)
		r := fx.results[0]
		if got := cval(t, r.NextPC); got != tc.nextPC {
			t.Errorf("%s: next pc %#x, want %#x", riscv.Disasm(tc.word), got, tc.nextPC)
		}
		if riscv.Decode(tc.word).Mn == riscv.InsJAL && cval(t, r.RdValue) != 4 {
			t.Errorf("jal link value wrong")
		}
	}
}

func TestLoadsAndStores(t *testing.T) {
	mem := map[uint32]uint8{100: 0x80, 101: 0x91, 102: 0x22, 103: 0x13}
	regs := map[int]uint32{1: 100, 2: 0xdeadbeef}

	checks := []struct {
		word uint32
		want uint32
	}{
		{riscv.LB(3, 1, 0), 0xffffff80},
		{riscv.LBU(3, 1, 0), 0x80},
		{riscv.LH(3, 1, 0), 0xffff9180},
		{riscv.LHU(3, 1, 0), 0x9180},
		{riscv.LW(3, 1, 0), 0x13229180},
		{riscv.LB(3, 1, 2), 0x22},
	}
	for _, tc := range checks {
		fx := run(t, iss.FixedConfig(), []uint32{tc.word}, regs, 1, mem)
		r := fx.results[0]
		if r.Trap {
			t.Errorf("%s: unexpected trap", riscv.Disasm(tc.word))
			continue
		}
		if got := cval(t, r.RdValue); got != tc.want {
			t.Errorf("%s: got %#x, want %#x", riscv.Disasm(tc.word), got, tc.want)
		}
	}

	fx := run(t, iss.FixedConfig(), []uint32{riscv.SW(1, 2, 8)}, regs, 1, nil)
	if fx.results[0].Trap {
		t.Fatal("sw trapped")
	}
	for i, want := range []uint8{0xef, 0xbe, 0xad, 0xde} {
		if got := fx.mem[108+uint32(i)]; got != want {
			t.Errorf("mem[%d] = %#x, want %#x", 108+i, got, want)
		}
	}
	fx = run(t, iss.FixedConfig(), []uint32{riscv.SB(1, 2, 8)}, regs, 1, nil)
	if got := fx.mem[108]; got != 0xef {
		t.Errorf("sb stored %#x", got)
	}
	if _, ok := fx.mem[109]; ok {
		t.Error("sb touched more than one byte")
	}
}

func TestMisalignedTraps(t *testing.T) {
	regs := map[int]uint32{1: 101}
	for _, tc := range []struct {
		word  uint32
		cause uint32
	}{
		{riscv.LW(3, 1, 0), riscv.ExcLoadAddrMisaligned},
		{riscv.LH(3, 1, 0), riscv.ExcLoadAddrMisaligned},
		{riscv.SW(1, 2, 0), riscv.ExcStoreAddrMisaligned},
		{riscv.SH(1, 2, 0), riscv.ExcStoreAddrMisaligned},
	} {
		fx := run(t, iss.VPConfig(), []uint32{tc.word}, regs, 1, nil)
		r := fx.results[0]
		if !r.Trap || r.Cause != tc.cause {
			t.Errorf("%s: trap=%v cause=%d, want cause %d", riscv.Disasm(tc.word), r.Trap, r.Cause, tc.cause)
		}
		if r.RdAddr != 0 {
			t.Errorf("%s: trapped instruction must not write rd", riscv.Disasm(tc.word))
		}
	}
	// Byte accesses never misalign.
	fx := run(t, iss.VPConfig(), []uint32{riscv.LB(3, 1, 0)}, regs, 1, nil)
	if fx.results[0].Trap {
		t.Error("lb must not trap on odd address")
	}
}

func TestTrapsAndMret(t *testing.T) {
	// ecall traps to mtvec (0), records mepc/mcause; mret returns to mepc.
	prog := []uint32{
		riscv.CSRRWI(0, riscv.CSRMTvec, 16), // set mtvec = 16... CSRRWI writes zimm (max 31)
	}
	fx := run(t, iss.FixedConfig(), prog, nil, 1, nil)
	if fx.results[0].Trap {
		t.Fatal("mtvec write trapped")
	}

	// Program: set mtvec=16 (nop-pad), ecall at pc=4 -> trap to 16; mret at 16 -> back to 4.
	prog = []uint32{
		riscv.CSRRWI(0, riscv.CSRMTvec, 16),
		riscv.ECALL(),
		riscv.ADDI(0, 0, 0),
		riscv.ADDI(0, 0, 0),
		riscv.MRET(),
	}
	fx = run(t, iss.FixedConfig(), prog, nil, 3, nil)
	r1 := fx.results[1] // ecall
	if !r1.Trap || r1.Cause != riscv.ExcEnvCallFromM {
		t.Fatalf("ecall: trap=%v cause=%d", r1.Trap, r1.Cause)
	}
	if got := cval(t, r1.NextPC); got != 16 {
		t.Fatalf("trap vector: pc = %d, want 16", got)
	}
	r2 := fx.results[2] // mret at 16
	if got := cval(t, r2.NextPC); got != 4 {
		t.Fatalf("mret: pc = %d, want 4 (mepc)", got)
	}
}

func TestEbreakAndWFI(t *testing.T) {
	fx := run(t, iss.FixedConfig(), []uint32{riscv.EBREAK()}, nil, 1, nil)
	if !fx.results[0].Trap || fx.results[0].Cause != riscv.ExcBreakpoint {
		t.Error("ebreak should trap with breakpoint cause")
	}
	fx = run(t, iss.FixedConfig(), []uint32{riscv.WFI()}, nil, 1, nil)
	if fx.results[0].Trap {
		t.Error("wfi must be a NOP in the ISS")
	}
	if got := cval(t, fx.results[0].NextPC); got != 4 {
		t.Error("wfi must fall through")
	}
}

func TestIllegalInstructionTraps(t *testing.T) {
	for _, w := range []uint32{
		0x00000000,
		0xffffffff,
		riscv.SLLI(1, 2, 3) | 1<<25, // reserved RV32 shift encoding
		riscv.EncodeI(riscv.OpLoad, 1, 3, 2, 0),
	} {
		fx := run(t, iss.FixedConfig(), []uint32{w}, map[int]uint32{2: 8}, 1, nil)
		r := fx.results[0]
		if !r.Trap || r.Cause != riscv.ExcIllegalInstruction {
			t.Errorf("%#08x: trap=%v cause=%d, want illegal", w, r.Trap, r.Cause)
		}
	}
}

func TestCSRSemantics(t *testing.T) {
	regs := map[int]uint32{1: 0xf0f0, 2: 0x0f0f}

	// csrrw reads old value, writes new; csrrs sets bits; csrrc clears bits.
	prog := []uint32{
		riscv.CSRRW(3, riscv.CSRMScratch, 1), // x3 = 0, mscratch = 0xf0f0
		riscv.CSRRS(4, riscv.CSRMScratch, 2), // x4 = 0xf0f0, mscratch = 0xffff
		riscv.CSRRC(5, riscv.CSRMScratch, 1), // x5 = 0xffff, mscratch = 0x0f0f
		riscv.CSRRS(6, riscv.CSRMScratch, 0), // x6 = 0x0f0f (no write)
	}
	fx := run(t, iss.FixedConfig(), prog, regs, 4, nil)
	wants := []uint32{0, 0xf0f0, 0xffff, 0x0f0f}
	for i, want := range wants {
		if fx.results[i].Trap {
			t.Fatalf("step %d trapped", i)
		}
		if got := cval(t, fx.results[i].RdValue); got != want {
			t.Errorf("step %d: rd = %#x, want %#x", i, got, want)
		}
	}

	// Immediate forms.
	prog = []uint32{
		riscv.CSRRWI(3, riscv.CSRMScratch, 21), // mscratch = 21
		riscv.CSRRSI(4, riscv.CSRMScratch, 8),  // x4 = 21, mscratch = 29
		riscv.CSRRCI(5, riscv.CSRMScratch, 5),  // x5 = 29, mscratch = 24
		riscv.CSRRSI(6, riscv.CSRMScratch, 0),  // x6 = 24
	}
	fx = run(t, iss.FixedConfig(), prog, nil, 4, nil)
	for i, want := range []uint32{0, 21, 29, 24} {
		if got := cval(t, fx.results[i].RdValue); got != want {
			t.Errorf("imm step %d: rd = %#x, want %#x", i, got, want)
		}
	}
}

func TestCSRWriteToReadOnlyTraps(t *testing.T) {
	for _, w := range []uint32{
		riscv.CSRRW(0, riscv.CSRMArchID, 0),
		riscv.CSRRS(1, riscv.CSRMVendorID, 1),
		riscv.CSRRWI(0, riscv.CSRMHartID, 3),
		riscv.CSRRW(0, riscv.CSRCycle, 0),
	} {
		fx := run(t, iss.FixedConfig(), []uint32{w}, map[int]uint32{1: 1}, 1, nil)
		r := fx.results[0]
		if !r.Trap || r.Cause != riscv.ExcIllegalInstruction {
			t.Errorf("%s: want illegal trap, got trap=%v", riscv.Disasm(w), r.Trap)
		}
	}
	// Read-only CSR *reads* are fine.
	fx := run(t, iss.FixedConfig(), []uint32{riscv.CSRRS(1, riscv.CSRMArchID, 0)}, nil, 1, nil)
	if fx.results[0].Trap {
		t.Error("marchid read trapped")
	}
}

func TestUnknownCSRTraps(t *testing.T) {
	fx := run(t, iss.FixedConfig(), []uint32{riscv.CSRRW(1, 0x400, 0)}, nil, 1, nil)
	if !fx.results[0].Trap {
		t.Error("access to unknown CSR must trap")
	}
}

func TestVPBugsMidelegMedelegReadTrap(t *testing.T) {
	// VP config: reads of mideleg/medeleg trap (the paper's E* rows).
	for _, csr := range []uint16{riscv.CSRMIdeleg, riscv.CSRMEdeleg} {
		fx := run(t, iss.VPConfig(), []uint32{riscv.CSRRS(1, uint32(csr), 0)}, nil, 1, nil)
		if !fx.results[0].Trap {
			t.Errorf("VP must trap reading %s", riscv.CSRName(csr))
		}
		// Write-only access (csrrw rd=x0) performs no read and must not trap.
		fx = run(t, iss.VPConfig(), []uint32{riscv.CSRRW(0, uint32(csr), 1)}, map[int]uint32{1: 1}, 1, nil)
		if fx.results[0].Trap {
			t.Errorf("VP write-only access to %s must not trap", riscv.CSRName(csr))
		}
		// The fixed config reads fine.
		fx = run(t, iss.FixedConfig(), []uint32{riscv.CSRRS(1, uint32(csr), 0)}, nil, 1, nil)
		if fx.results[0].Trap {
			t.Errorf("fixed ISS must read %s", riscv.CSRName(csr))
		}
	}
}

func TestAbstractCounters(t *testing.T) {
	// The ISS counters advance one per instruction, counting the current
	// one: reading mcycle on the first instruction gives 1, on the third 3.
	prog := []uint32{
		riscv.CSRRS(1, riscv.CSRMCycle, 0),
		riscv.ADDI(0, 0, 0),
		riscv.CSRRS(2, riscv.CSRInstret, 0),
	}
	fx := run(t, iss.FixedConfig(), prog, nil, 3, nil)
	if got := cval(t, fx.results[0].RdValue); got != 1 {
		t.Errorf("mcycle at instr 1 = %d, want 1", got)
	}
	if got := cval(t, fx.results[2].RdValue); got != 3 {
		t.Errorf("instret at instr 3 = %d, want 3", got)
	}
}

func TestX0NeverWritten(t *testing.T) {
	fx := run(t, iss.FixedConfig(), []uint32{riscv.ADDI(0, 0, 99), riscv.ADD(3, 0, 0)}, nil, 2, nil)
	if fx.results[0].RdAddr != 0 {
		t.Error("write to x0 must not be reported")
	}
	if got := cval(t, fx.results[1].RdValue); got != 0 {
		t.Errorf("x0 leaked a value: %d", got)
	}
}

func TestHpmRangeImplemented(t *testing.T) {
	// hpm counters are storage in the VP: write then read back.
	csr := uint32(riscv.CSRMHpmCounterBase + 7)
	prog := []uint32{
		riscv.CSRRW(0, csr, 1),
		riscv.CSRRS(2, csr, 0),
	}
	fx := run(t, iss.FixedConfig(), prog, map[int]uint32{1: 0x1234}, 2, nil)
	if fx.results[0].Trap || fx.results[1].Trap {
		t.Fatal("hpm access trapped")
	}
	if got := cval(t, fx.results[1].RdValue); got != 0x1234 {
		t.Errorf("hpm read-back = %#x, want 0x1234", got)
	}
}

func TestImplementsCSR(t *testing.T) {
	for _, addr := range []uint16{riscv.CSRMScratch, riscv.CSRMCycle, riscv.CSRTimeH, riscv.CSRMHpmCounterBase + 3, riscv.CSRMHpmEventBase + 31} {
		if !iss.ImplementsCSR(addr) {
			t.Errorf("ISS should implement %s", riscv.CSRName(addr))
		}
	}
	for _, addr := range []uint16{0x400, 0x7c0, riscv.CSRMHpmEventBase + 2} {
		if iss.ImplementsCSR(addr) {
			t.Errorf("ISS should not implement %#x", addr)
		}
	}
}

func TestMExtensionISS(t *testing.T) {
	cfg := iss.FixedConfig()
	cfg.EnableM = true
	regs := map[int]uint32{1: 0xfffffff6, 2: 7}
	cases := []struct {
		word uint32
		want uint32
	}{
		{riscv.MUL(3, 1, 2), 0xffffffba},
		{riscv.MULH(3, 1, 2), 0xffffffff},
		{riscv.MULHU(3, 1, 2), 6},
		{riscv.MULHSU(3, 1, 2), 0xffffffff},
		{riscv.DIV(3, 1, 2), 0xffffffff},
		{riscv.DIVU(3, 1, 2), 0x24924923},
		{riscv.REM(3, 1, 2), 0xfffffffd},
		{riscv.REMU(3, 1, 2), 0xfffffff6 % 7},
	}
	for _, tc := range cases {
		fx := run(t, cfg, []uint32{tc.word}, regs, 1, nil)
		if fx.results[0].Trap {
			t.Errorf("%s trapped", riscv.Disasm(tc.word))
			continue
		}
		if got := cval(t, fx.results[0].RdValue); got != tc.want {
			t.Errorf("%s: got %#x, want %#x", riscv.Disasm(tc.word), got, tc.want)
		}
	}
	// misa advertises M.
	fx := run(t, cfg, []uint32{riscv.CSRRS(1, riscv.CSRMIsa, 0)}, nil, 1, nil)
	if got := cval(t, fx.results[0].RdValue); got != riscv.MisaRV32IM {
		t.Errorf("misa = %#x, want %#x", got, riscv.MisaRV32IM)
	}
	// Disabled M traps.
	fx = run(t, iss.FixedConfig(), []uint32{riscv.MUL(3, 1, 2)}, regs, 1, nil)
	if !fx.results[0].Trap {
		t.Error("MUL must trap without EnableM")
	}
}
