package iss

import (
	"symriscv/internal/riscv"
	"symriscv/internal/smt"
)

// The VP's implemented CSR surface (deterministic resolution order). The
// hpm counter/event files are matched as ranges so that one exploration path
// covers each whole file — mirroring Table I's "mhpmcounter3-31" rows.
var issScalarCSRs = []uint16{
	riscv.CSRMStatus, riscv.CSRMIsa, riscv.CSRMEdeleg, riscv.CSRMIdeleg,
	riscv.CSRMIe, riscv.CSRMTvec, riscv.CSRMCounteren, riscv.CSRMScratch,
	riscv.CSRMEpc, riscv.CSRMCause, riscv.CSRMTval, riscv.CSRMIp,
	riscv.CSRMCycle, riscv.CSRMInstret, riscv.CSRMCycleH, riscv.CSRMInstretH,
	riscv.CSRCycle, riscv.CSRTime, riscv.CSRInstret,
	riscv.CSRCycleH, riscv.CSRTimeH, riscv.CSRInstretH,
	riscv.CSRMVendorID, riscv.CSRMArchID, riscv.CSRMImpID, riscv.CSRMHartID,
}

type csrRange struct{ lo, hi uint16 }

var issCSRRanges = []csrRange{
	{riscv.CSRMHpmCounterBase + 3, riscv.CSRMHpmCounterBase + 31},
	{riscv.CSRMHpmCounterHBase + 3, riscv.CSRMHpmCounterHBase + 31},
	{riscv.CSRMHpmEventBase + 3, riscv.CSRMHpmEventBase + 31},
}

// chooseCSR resolves the symbolic 12-bit CSR address field against the
// implemented set, forking per implemented CSR (or CSR file range). Unknown
// addresses stay symbolic (known == false): the ISS treats them uniformly
// (illegal-instruction trap), so one path covers the whole class.
func (s *ISS) chooseCSR(field *smt.Term) (addr uint16, known bool) {
	ctx := s.ctx
	for _, a := range issScalarCSRs {
		if s.eng.BranchEq(field, ctx.BV(12, uint64(a))) {
			return a, true
		}
	}
	for _, rng := range issCSRRanges {
		in := ctx.BAnd(
			ctx.Uge(field, ctx.BV(12, uint64(rng.lo))),
			ctx.Ule(field, ctx.BV(12, uint64(rng.hi))),
		)
		if s.eng.Branch(in) {
			return uint16(s.eng.Concretize(field)), true
		}
	}
	return 0, false
}

// counter returns the ISS's abstract timing view of a cycle/instret-class
// counter: the VP has no cycle-accurate model, so every counter advances one
// per instruction, counting the current instruction as executed.
func (s *ISS) counter() *smt.Term { return s.bv(uint32(s.instret + 1)) }

// csrRead returns the CSR value, or ok == false when the access must raise
// an illegal-instruction exception (including the VP's mideleg/medeleg
// read-trap bugs).
func (s *ISS) csrRead(addr uint16) (v *smt.Term, ok bool) {
	switch addr {
	case riscv.CSRMIdeleg:
		if s.cfg.MidelegReadTrap {
			return nil, false
		}
	case riscv.CSRMEdeleg:
		if s.cfg.MedelegReadTrap {
			return nil, false
		}
	case riscv.CSRMIsa:
		if s.cfg.EnableM {
			return s.bv(riscv.MisaRV32IM), true
		}
		return s.bv(riscv.MisaRV32I), true
	case riscv.CSRMCycle, riscv.CSRCycle, riscv.CSRTime, riscv.CSRMInstret, riscv.CSRInstret:
		if w, stored := s.csr[addr]; stored {
			return w, true
		}
		return s.counter(), true
	}
	return s.csrStored(addr), true
}

// csrWrite stores the value, or reports ok == false for architecturally
// read-only CSRs (whose write must raise illegal-instruction).
func (s *ISS) csrWrite(addr uint16, v *smt.Term) (ok bool) {
	if riscv.CSRReadOnly(addr) {
		return false
	}
	s.csr[addr] = v
	return true
}

// csrOp executes one Zicsr instruction.
func (s *ISS) csrOp(r *Result, insn *smt.Term) {
	ctx := s.ctx

	type csrClass uint8
	const (
		clRW csrClass = iota
		clRS
		clRC
	)
	var class csrClass
	var immForm bool
	switch {
	case s.match(insn, 0x707f, uint32(riscv.F3CSRRW)<<12|riscv.OpSystem):
		class = clRW
	case s.match(insn, 0x707f, uint32(riscv.F3CSRRS)<<12|riscv.OpSystem):
		class = clRS
	case s.match(insn, 0x707f, uint32(riscv.F3CSRRC)<<12|riscv.OpSystem):
		class = clRC
	case s.match(insn, 0x707f, uint32(riscv.F3CSRRWI)<<12|riscv.OpSystem):
		class, immForm = clRW, true
	case s.match(insn, 0x707f, uint32(riscv.F3CSRRSI)<<12|riscv.OpSystem):
		class, immForm = clRS, true
	case s.match(insn, 0x707f, uint32(riscv.F3CSRRCI)<<12|riscv.OpSystem):
		class, immForm = clRC, true
	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
		return
	}

	rd := s.chooseReg(riscv.FieldRd(ctx, insn))

	var src *smt.Term
	var wantWrite bool
	if immForm {
		src = riscv.SymZimm(ctx, insn)
		if class == clRW {
			wantWrite = true
		} else {
			// CSRRSI/CSRRCI write unless the immediate is zero.
			wantWrite = !s.eng.BranchEq(riscv.FieldRs1(ctx, insn), ctx.BV(5, 0))
		}
	} else {
		rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
		src = s.regs[rs1]
		// CSRRS/CSRRC write unless rs1 is the x0 *index*.
		wantWrite = class == clRW || rs1 != 0
	}
	wantRead := class != clRW || rd != 0

	addr, known := s.chooseCSR(riscv.FieldCSR(ctx, insn))
	if !known {
		s.trap(r, riscv.ExcIllegalInstruction, insn)
		return
	}

	var old *smt.Term
	if wantRead {
		var ok bool
		old, ok = s.csrRead(addr)
		if !ok {
			s.trap(r, riscv.ExcIllegalInstruction, insn)
			return
		}
	}
	if wantWrite {
		var nv *smt.Term
		switch class {
		case clRW:
			nv = src
		case clRS:
			nv = ctx.Or(old, src)
		case clRC:
			nv = ctx.And(old, ctx.Not(src))
		}
		if !s.csrWrite(addr, nv) {
			s.trap(r, riscv.ExcIllegalInstruction, insn)
			return
		}
	}
	if wantRead {
		s.setRd(r, rd, old)
	}
}

// ImplementsCSR reports whether the VP-style ISS implements the CSR address
// (scalar set plus the hpm counter/event files).
func ImplementsCSR(addr uint16) bool {
	for _, a := range issScalarCSRs {
		if a == addr {
			return true
		}
	}
	for _, rng := range issCSRRanges {
		if addr >= rng.lo && addr <= rng.hi {
			return true
		}
	}
	return false
}
