// Package iss implements the reference Instruction Set Simulator in the role
// of the RISC-V VP's ISS: an instruction-accurate RV32I + Zicsr model
// executing over symbolic values. It is the golden model of the
// co-simulation; the voter compares its per-step results against the RTL
// core's RVFI records.
//
// The VP's two real bugs reported in the paper (illegal-instruction trap on
// *reads* of mideleg and medeleg) are reproduced behind Config switches so
// Table I's E* rows can be regenerated.
package iss

import (
	"symriscv/internal/core"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
	"symriscv/internal/smt"
)

// InstrFetcher supplies (cached, shared) instruction words by address — the
// symbolic instruction memory.
type InstrFetcher interface {
	Fetch(addr uint32) *smt.Term
}

// DataMemory is the ISS's typed data-memory binding: byte-granular raw
// accesses; sign/zero extension is the ISS's job (per §IV-C.2 of the paper).
type DataMemory interface {
	LoadByte(addr uint32) *smt.Term // width 8
	LoadHalf(addr uint32) *smt.Term // width 16
	LoadWord(addr uint32) *smt.Term // width 32
	StoreByte(addr uint32, v *smt.Term)
	StoreHalf(addr uint32, v *smt.Term)
	StoreWord(addr uint32, v *smt.Term)
}

// Config selects the ISS behaviour variant.
type Config struct {
	// TrapOnMisaligned raises load/store-address-misaligned exceptions (the
	// VP behaviour; the permissible alternative is full misaligned support).
	TrapOnMisaligned bool
	// MidelegReadTrap reproduces the VP bug of trapping on mideleg reads.
	MidelegReadTrap bool
	// MedelegReadTrap reproduces the VP bug of trapping on medeleg reads.
	MedelegReadTrap bool
	// EnableM adds the RV32M multiply/divide extension (off by default: the
	// paper's case study targets RV32I+Zicsr).
	EnableM bool
}

// VPConfig returns the as-shipped RISC-V VP behaviour, including its two
// bugs from Table I.
func VPConfig() Config {
	return Config{TrapOnMisaligned: true, MidelegReadTrap: true, MedelegReadTrap: true}
}

// FixedConfig returns the VP behaviour with the two bugs repaired.
func FixedConfig() Config {
	return Config{TrapOnMisaligned: true}
}

// Result reports the architectural effect of one Step for the checker. It is
// the reference half of the rvfi comparison; the alias keeps the ISS free of
// its own result shape so any checker consumer sees one canonical type.
type Result = rvfi.Reference

// ISS is the reference simulator state.
type ISS struct {
	cfg  Config
	eng  *core.Engine
	ctx  *smt.Context
	imem InstrFetcher
	dmem DataMemory

	pc          *smt.Term
	regs        [32]*smt.Term
	interesting []int // register indices whose content is distinguished

	csr     map[uint16]*smt.Term
	instret uint64

	irq   IrqSource
	steps uint64
}

// IrqSource supplies the (symbolic) machine-external-interrupt line, one
// 1-bit term per instruction slot (the canonical contract lives in rvfi).
type IrqSource = rvfi.IrqSource

// New returns an ISS with all registers zero and PC 0.
func New(eng *core.Engine, imem InstrFetcher, dmem DataMemory, cfg Config) *ISS {
	ctx := eng.Context()
	s := &ISS{
		cfg:  cfg,
		eng:  eng,
		ctx:  ctx,
		imem: imem,
		dmem: dmem,
		pc:   ctx.BV(32, 0),
		csr:  make(map[uint16]*smt.Term),
	}
	zero := ctx.BV(32, 0)
	for i := range s.regs {
		s.regs[i] = zero
	}
	s.interesting = []int{0}
	return s
}

// SetPC sets the program counter.
func (s *ISS) SetPC(pc uint32) { s.pc = s.ctx.BV(32, uint64(pc)) }

// SetIrqSource connects the external interrupt line (testbench hook).
func (s *ISS) SetIrqSource(src IrqSource) { s.irq = src }

// SetCSR initialises a CSR's storage (testbench hook for symbolic initial
// machine state).
func (s *ISS) SetCSR(addr uint16, v *smt.Term) { s.csr[addr] = v }

// PC returns the current program counter term.
func (s *ISS) PC() *smt.Term { return s.pc }

// SetReg initialises register i (used by the testbench to install the sliced
// symbolic registers). Writing x0 is ignored.
func (s *ISS) SetReg(i int, v *smt.Term) {
	if i == 0 {
		return
	}
	s.regs[i] = v
	s.markInteresting(i)
}

// Reg returns the current value of register i.
func (s *ISS) Reg(i int) *smt.Term { return s.regs[i] }

// Instret returns the retired-instruction count.
func (s *ISS) Instret() uint64 { return s.instret }

func (s *ISS) markInteresting(i int) {
	for p, x := range s.interesting {
		if x == i {
			return
		}
		if x > i {
			s.interesting = append(s.interesting, 0)
			copy(s.interesting[p+1:], s.interesting[p:])
			s.interesting[p] = i
			return
		}
	}
	s.interesting = append(s.interesting, i)
}

func (s *ISS) writeReg(i int, v *smt.Term) {
	if i == 0 {
		return
	}
	s.regs[i] = v
	s.markInteresting(i)
}

// chooseReg resolves a symbolic 5-bit register field to a concrete index.
// Register indices with distinguished content (x0, the symbolic slice, and
// anything written on this path) fork explicitly; the remaining indices all
// hold identical content, so one concretized representative covers the class.
func (s *ISS) chooseReg(field *smt.Term) int {
	for _, i := range s.interesting {
		if s.eng.BranchEq(field, s.ctx.BV(5, uint64(i))) {
			return i
		}
	}
	return int(s.eng.Concretize(field))
}

// match asks the engine whether the instruction matches the mask/match pair.
func (s *ISS) match(insn *smt.Term, mask, match uint32) bool {
	return s.eng.Branch(s.ctx.Eq(
		s.ctx.And(insn, s.ctx.BV(32, uint64(mask))),
		s.ctx.BV(32, uint64(match)),
	))
}

func (s *ISS) bv(v uint32) *smt.Term { return s.ctx.BV(32, uint64(v)) }

// trap redirects control to the machine trap vector.
func (s *ISS) trap(r *Result, cause uint32, tval *smt.Term) {
	s.csr[riscv.CSRMEpc] = r.PC
	s.csr[riscv.CSRMCause] = s.bv(cause)
	if tval != nil {
		s.csr[riscv.CSRMTval] = tval
	} else {
		s.csr[riscv.CSRMTval] = s.bv(0)
	}
	r.Trap = true
	r.Cause = cause
	r.NextPC = s.csrStored(riscv.CSRMTvec)
	// The destination register is not written on a trapped instruction.
	r.RdAddr = 0
	r.RdValue = nil
}

func (s *ISS) csrStored(addr uint16) *smt.Term {
	if v, ok := s.csr[addr]; ok {
		return v
	}
	return s.bv(0)
}

// Step fetches, decodes and executes one instruction, advancing the ISS.
// When an interrupt source is connected, the external line is sampled first
// (one opportunity per instruction slot).
func (s *ISS) Step() Result {
	if s.irq != nil {
		taken := riscv.SymInterruptTaken(s.ctx, s.irq.Line(s.steps),
			s.csrStored(riscv.CSRMStatus), s.csrStored(riscv.CSRMIe))
		if s.eng.Branch(taken) {
			s.csr[riscv.CSRMEpc] = s.pc
			s.csr[riscv.CSRMCause] = s.bv(riscv.CauseMachineExternalIRQ)
			s.pc = s.csrStored(riscv.CSRMTvec)
		}
	}
	s.steps++
	pcVal := uint32(s.eng.Concretize(s.pc))
	pc := s.bv(pcVal)
	insn := s.imem.Fetch(pcVal)

	r := Result{PC: pc, Insn: insn}
	pcPlus4 := s.bv(pcVal + 4)
	r.NextPC = pcPlus4

	s.execute(&r, insn, pc, pcPlus4)

	s.pc = r.NextPC
	if !r.Trap {
		s.instret++
	}
	s.eng.CountInstruction(1)
	return r
}

func (s *ISS) execute(r *Result, insn, pc, pcPlus4 *smt.Term) {
	ctx := s.ctx

	switch {
	case s.match(insn, 0x7f, riscv.OpLUI):
		rd := s.chooseReg(riscv.FieldRd(ctx, insn))
		s.setRd(r, rd, riscv.SymImmU(ctx, insn))

	case s.match(insn, 0x7f, riscv.OpAUIPC):
		rd := s.chooseReg(riscv.FieldRd(ctx, insn))
		s.setRd(r, rd, ctx.Add(pc, riscv.SymImmU(ctx, insn)))

	case s.match(insn, 0x7f, riscv.OpJAL):
		rd := s.chooseReg(riscv.FieldRd(ctx, insn))
		r.NextPC = ctx.Add(pc, riscv.SymImmJ(ctx, insn))
		s.setRd(r, rd, pcPlus4)

	case s.match(insn, 0x707f, riscv.OpJALR):
		rd := s.chooseReg(riscv.FieldRd(ctx, insn))
		rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
		target := ctx.And(ctx.Add(s.regs[rs1], riscv.SymImmI(ctx, insn)), s.bv(0xfffffffe))
		r.NextPC = target
		s.setRd(r, rd, pcPlus4)

	case s.match(insn, 0x7f, riscv.OpBranch):
		s.branch(r, insn, pc, pcPlus4)

	case s.match(insn, 0x7f, riscv.OpLoad):
		s.load(r, insn)

	case s.match(insn, 0x7f, riscv.OpStore):
		s.store(r, insn)

	case s.match(insn, 0x7f, riscv.OpImm):
		s.opImm(r, insn)

	case s.match(insn, 0x7f, riscv.OpReg):
		s.opReg(r, insn)

	case s.match(insn, 0x707f, riscv.OpMisc):
		// FENCE: a NOP for this single-hart model.

	case s.match(insn, 0xffffffff, riscv.F12ECALL<<20|riscv.OpSystem):
		s.trap(r, riscv.ExcEnvCallFromM, nil)

	case s.match(insn, 0xffffffff, riscv.F12EBREAK<<20|riscv.OpSystem):
		s.trap(r, riscv.ExcBreakpoint, nil)

	case s.match(insn, 0xffffffff, riscv.F12WFI<<20|riscv.OpSystem):
		// WFI: legal to implement as a NOP; the VP does.

	case s.match(insn, 0xffffffff, riscv.F12MRET<<20|riscv.OpSystem):
		r.NextPC = s.csrStored(riscv.CSRMEpc)

	case s.match(insn, 0x7f, riscv.OpSystem):
		s.csrOp(r, insn)

	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
	}
}

func (s *ISS) setRd(r *Result, rd int, v *smt.Term) {
	s.writeReg(rd, v)
	if rd != 0 {
		r.RdAddr = rd
		r.RdValue = v
	}
}

func (s *ISS) branch(r *Result, insn, pc, pcPlus4 *smt.Term) {
	ctx := s.ctx
	rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
	rs2 := s.chooseReg(riscv.FieldRs2(ctx, insn))
	a, b := s.regs[rs1], s.regs[rs2]

	var cond *smt.Term
	switch {
	case s.match(insn, 0x707f, riscv.F3BEQ<<12|riscv.OpBranch):
		cond = ctx.Eq(a, b)
	case s.match(insn, 0x707f, riscv.F3BNE<<12|riscv.OpBranch):
		cond = ctx.Ne(a, b)
	case s.match(insn, 0x707f, riscv.F3BLT<<12|riscv.OpBranch):
		cond = ctx.Slt(a, b)
	case s.match(insn, 0x707f, riscv.F3BGE<<12|riscv.OpBranch):
		cond = ctx.Sge(a, b)
	case s.match(insn, 0x707f, riscv.F3BLTU<<12|riscv.OpBranch):
		cond = ctx.Ult(a, b)
	case s.match(insn, 0x707f, riscv.F3BGEU<<12|riscv.OpBranch):
		cond = ctx.Uge(a, b)
	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
		return
	}
	if s.eng.Branch(cond) {
		r.NextPC = ctx.Add(pc, riscv.SymImmB(ctx, insn))
	} else {
		r.NextPC = pcPlus4
	}
}

func (s *ISS) load(r *Result, insn *smt.Term) {
	ctx := s.ctx
	rd := s.chooseReg(riscv.FieldRd(ctx, insn))
	rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
	ea := ctx.Add(s.regs[rs1], riscv.SymImmI(ctx, insn))
	r.MemAddr = ea

	switch {
	case s.match(insn, 0x707f, riscv.F3LB<<12|riscv.OpLoad):
		addr := uint32(s.eng.Concretize(ea))
		s.setRd(r, rd, ctx.SExt(s.dmem.LoadByte(addr), 32))

	case s.match(insn, 0x707f, riscv.F3LBU<<12|riscv.OpLoad):
		addr := uint32(s.eng.Concretize(ea))
		s.setRd(r, rd, ctx.ZExt(s.dmem.LoadByte(addr), 32))

	case s.match(insn, 0x707f, riscv.F3LH<<12|riscv.OpLoad):
		if s.misaligned(r, ea, 1, riscv.ExcLoadAddrMisaligned) {
			return
		}
		addr := uint32(s.eng.Concretize(ea))
		s.setRd(r, rd, ctx.SExt(s.dmem.LoadHalf(addr), 32))

	case s.match(insn, 0x707f, riscv.F3LHU<<12|riscv.OpLoad):
		if s.misaligned(r, ea, 1, riscv.ExcLoadAddrMisaligned) {
			return
		}
		addr := uint32(s.eng.Concretize(ea))
		s.setRd(r, rd, ctx.ZExt(s.dmem.LoadHalf(addr), 32))

	case s.match(insn, 0x707f, riscv.F3LW<<12|riscv.OpLoad):
		if s.misaligned(r, ea, 3, riscv.ExcLoadAddrMisaligned) {
			return
		}
		addr := uint32(s.eng.Concretize(ea))
		s.setRd(r, rd, s.dmem.LoadWord(addr))

	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
	}
}

// misaligned branches on the alignment condition of ea, trapping when the
// configuration demands it. It reports whether the instruction trapped.
func (s *ISS) misaligned(r *Result, ea *smt.Term, lowMask uint32, cause uint32) bool {
	if !s.cfg.TrapOnMisaligned {
		return false
	}
	ctx := s.ctx
	cond := ctx.Ne(ctx.And(ea, s.bv(lowMask)), s.bv(0))
	if s.eng.Branch(cond) {
		s.trap(r, cause, ea)
		return true
	}
	return false
}

func (s *ISS) store(r *Result, insn *smt.Term) {
	ctx := s.ctx
	rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
	rs2 := s.chooseReg(riscv.FieldRs2(ctx, insn))
	ea := ctx.Add(s.regs[rs1], riscv.SymImmS(ctx, insn))
	val := s.regs[rs2]
	r.MemAddr = ea
	r.MemWrite = true

	switch {
	case s.match(insn, 0x707f, riscv.F3SB<<12|riscv.OpStore):
		addr := uint32(s.eng.Concretize(ea))
		s.dmem.StoreByte(addr, ctx.Extract(val, 7, 0))
		r.MemWData, r.MemWBytes = ctx.ZExt(ctx.Extract(val, 7, 0), 32), 1

	case s.match(insn, 0x707f, riscv.F3SH<<12|riscv.OpStore):
		if s.misaligned(r, ea, 1, riscv.ExcStoreAddrMisaligned) {
			return
		}
		addr := uint32(s.eng.Concretize(ea))
		s.dmem.StoreHalf(addr, ctx.Extract(val, 15, 0))
		r.MemWData, r.MemWBytes = ctx.ZExt(ctx.Extract(val, 15, 0), 32), 2

	case s.match(insn, 0x707f, riscv.F3SW<<12|riscv.OpStore):
		if s.misaligned(r, ea, 3, riscv.ExcStoreAddrMisaligned) {
			return
		}
		addr := uint32(s.eng.Concretize(ea))
		s.dmem.StoreWord(addr, val)
		r.MemWData, r.MemWBytes = val, 4

	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
	}
}

func (s *ISS) opImm(r *Result, insn *smt.Term) {
	ctx := s.ctx
	rd := s.chooseReg(riscv.FieldRd(ctx, insn))
	rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
	a := s.regs[rs1]
	imm := riscv.SymImmI(ctx, insn)
	shamt := ctx.ZExt(riscv.FieldShamt(ctx, insn), 32)

	switch {
	case s.match(insn, 0x707f, riscv.F3ADDSUB<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.Add(a, imm))
	case s.match(insn, 0x707f, riscv.F3SLT<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.ZExt(ctx.BoolToBV(ctx.Slt(a, imm)), 32))
	case s.match(insn, 0x707f, riscv.F3SLTU<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.ZExt(ctx.BoolToBV(ctx.Ult(a, imm)), 32))
	case s.match(insn, 0x707f, riscv.F3XOR<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.Xor(a, imm))
	case s.match(insn, 0x707f, riscv.F3OR<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.Or(a, imm))
	case s.match(insn, 0x707f, riscv.F3AND<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.And(a, imm))
	case s.match(insn, 0xfe00707f, riscv.F3SLL<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.Shl(a, shamt))
	case s.match(insn, 0xfe00707f, riscv.F3SRL<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.Lshr(a, shamt))
	case s.match(insn, 0xfe00707f, 0x40000000|riscv.F3SRL<<12|riscv.OpImm):
		s.setRd(r, rd, ctx.Ashr(a, shamt))
	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
	}
}

func (s *ISS) opReg(r *Result, insn *smt.Term) {
	ctx := s.ctx
	rd := s.chooseReg(riscv.FieldRd(ctx, insn))
	rs1 := s.chooseReg(riscv.FieldRs1(ctx, insn))
	rs2 := s.chooseReg(riscv.FieldRs2(ctx, insn))
	a, b := s.regs[rs1], s.regs[rs2]
	shamt := ctx.And(b, s.bv(31))

	switch {
	case s.match(insn, 0xfe00707f, riscv.F3ADDSUB<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Add(a, b))
	case s.match(insn, 0xfe00707f, 0x40000000|riscv.F3ADDSUB<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Sub(a, b))
	case s.match(insn, 0xfe00707f, riscv.F3SLL<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Shl(a, shamt))
	case s.match(insn, 0xfe00707f, riscv.F3SLT<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.ZExt(ctx.BoolToBV(ctx.Slt(a, b)), 32))
	case s.match(insn, 0xfe00707f, riscv.F3SLTU<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.ZExt(ctx.BoolToBV(ctx.Ult(a, b)), 32))
	case s.match(insn, 0xfe00707f, riscv.F3XOR<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Xor(a, b))
	case s.match(insn, 0xfe00707f, riscv.F3SRL<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Lshr(a, shamt))
	case s.match(insn, 0xfe00707f, 0x40000000|riscv.F3SRL<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Ashr(a, shamt))
	case s.match(insn, 0xfe00707f, riscv.F3OR<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.Or(a, b))
	case s.match(insn, 0xfe00707f, riscv.F3AND<<12|riscv.OpReg):
		s.setRd(r, rd, ctx.And(a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3MUL<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymMul(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3MULH<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymMulH(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3MULHSU<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymMulHSU(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3MULHU<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymMulHU(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3DIV<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymDiv(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3DIVU<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymDivU(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3REM<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymRem(ctx, a, b))
	case s.cfg.EnableM && s.match(insn, 0xfe00707f, riscv.F7MulDiv<<25|riscv.F3REMU<<12|riscv.OpReg):
		s.setRd(r, rd, riscv.SymRemU(ctx, a, b))
	default:
		s.trap(r, riscv.ExcIllegalInstruction, insn)
	}
}
