// Package analysis implements a small, dependency-free static-analysis
// framework in the style of golang.org/x/tools/go/analysis, together with
// the repo-specific analyzers ("symlint") that enforce invariants the
// symbolic-execution stack relies on but the Go compiler cannot see:
//
//   - determinism: replay-based forking (DESIGN.md §5.1) requires every
//     co-simulation run to be bit-for-bit deterministic, so wall-clock,
//     global PRNGs, goroutines and order-sensitive map iteration are banned
//     from the deterministic kernel packages.
//   - hashcons: the voter's pointer-equality fast path is sound only if
//     every smt.Term is built through the hash-consing Context, so raw
//     term construction outside internal/smt is banned.
//   - clauseimmut: learned/shared clause slices ([]sat.Lit) that crossed a
//     package boundary are immutable; mutating them corrupts the solver's
//     clause database and the bit-blaster's caches.
//   - checkederr: solver/engine APIs report failure through error returns;
//     silently discarding them turns solver aborts into bogus verdicts.
//
// The framework deliberately mirrors go/analysis (Analyzer, Pass,
// Diagnostic, Reportf) so the analyzers could be ported to a multichecker
// driver verbatim if the x/tools dependency ever becomes acceptable; the
// repo's solver stack stays stdlib-only either way.
//
// Suppression: a diagnostic is suppressed by an explicit, justified
// directive on (or immediately above) the offending line:
//
//	//symlint:allow determinism -- wall-clock budget only, never feeds terms
//
// A directive without the "-- reason" part is itself reported. Unjustified
// suppression is not available by design.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in allow directives.
	Name string
	// Doc is a short description shown by `symlint -list`.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	PkgPath  string
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Run applies the analyzers to the package, filters the results through the
// //symlint:allow directives found in the package's files, and returns the
// surviving diagnostics sorted by position. Malformed directives are
// reported as diagnostics of the pseudo-analyzer "directive".
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	dirs, bad := collectDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	out = append(out, bad...)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			PkgPath:  pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
		for _, d := range pass.diags {
			if dirs.allows(a.Name, d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// directives maps file -> line -> set of allowed analyzer names.
type directives map[string]map[int]map[string]bool

func (d directives) allows(analyzer string, pos token.Position) bool {
	lines := d[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer]
}

const directivePrefix = "//symlint:allow"

// collectDirectives parses //symlint:allow comments. A directive applies to
// the source line it appears on; a directive alone on its line applies to
// the next line instead (the lint-comment convention).
func collectDirectives(fset *token.FileSet, files []*ast.File) (directives, []Diagnostic) {
	dirs := make(directives)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				names, reason, found := strings.Cut(rest, "--")
				if !found || strings.TrimSpace(reason) == "" {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  `symlint:allow directive requires a justification: "//symlint:allow <analyzer> -- <reason>"`,
					})
					continue
				}
				nameList := strings.FieldsFunc(names, func(r rune) bool { return r == ',' || r == ' ' || r == '\t' })
				if len(nameList) == 0 {
					bad = append(bad, Diagnostic{
						Analyzer: "directive",
						Pos:      pos,
						Message:  "symlint:allow directive names no analyzer",
					})
					continue
				}
				fileDirs := dirs[pos.Filename]
				if fileDirs == nil {
					fileDirs = make(map[int]map[string]bool)
					dirs[pos.Filename] = fileDirs
				}
				// A trailing directive covers its own line; a standalone
				// directive covers the next. Granting both is simpler than
				// telling the cases apart and cannot hide an unrelated
				// violation of a different analyzer.
				for _, line := range [2]int{pos.Line, pos.Line + 1} {
					set := fileDirs[line]
					if set == nil {
						set = make(map[string]bool)
						fileDirs[line] = set
					}
					for _, n := range nameList {
						set[strings.TrimSpace(n)] = true
					}
				}
			}
		}
	}
	return dirs, bad
}
