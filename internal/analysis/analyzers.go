package analysis

// All returns every symlint analyzer in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		CheckedErr,
		ClauseImmut,
		Determinism,
		HashCons,
		MapRange,
	}
}

// ByName resolves a comma-separated analyzer name list; nil selects all.
func ByName(names []string) []*Analyzer {
	if len(names) == 0 {
		return All()
	}
	var out []*Analyzer
	for _, n := range names {
		for _, a := range All() {
			if a.Name == n {
				out = append(out, a)
			}
		}
	}
	return out
}
