package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags map iteration that feeds an output sink directly. The
// determinism analyzer already forbids order-sensitive map ranges inside
// the replay-deterministic kernel; this one guards the *presentation*
// contract repo-wide: reports, JSONL traces and stdout summaries promise
// byte-stable output (golden tests diff them), and a `for k := range m`
// wrapped around a print or write emits records in randomized map order.
// The fix is always the same shape — collect the keys, sort, then emit —
// which is why the analyzer needs no sort-detection: a sorted emission
// loop ranges over a slice, not the map.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc: "forbid ranging over a map directly into an output sink (fmt print, json encode, writer) — " +
		"report and trace bytes must not depend on map iteration order; iterate sorted keys instead",
	Run: runMapRange,
}

// sinkFuncs are package-level output functions: calling one inside a
// map-range body emits in map order.
var sinkFuncs = map[string]map[string]bool{
	"fmt": {
		"Print": true, "Printf": true, "Println": true,
		"Fprint": true, "Fprintf": true, "Fprintln": true,
	},
	"io":            {"WriteString": true},
	"encoding/json": {"Marshal": true, "MarshalIndent": true},
}

// sinkMethods are output methods by defining package: the Write family on
// the stdlib buffer/writer types (and the io.Writer interface itself), and
// json.Encoder.Encode.
var sinkMethods = map[string]map[string]bool{
	"strings":       {"WriteString": true, "Write": true, "WriteByte": true, "WriteRune": true},
	"bytes":         {"WriteString": true, "Write": true, "WriteByte": true, "WriteRune": true},
	"bufio":         {"WriteString": true, "Write": true, "WriteByte": true, "WriteRune": true},
	"os":            {"WriteString": true, "Write": true},
	"io":            {"Write": true},
	"encoding/json": {"Encode": true},
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := outputSink(pass, rng.Body); sink != "" {
				pass.Reportf(rng.Pos(),
					"map iteration feeds output sink %s: emission order follows randomized map order; collect the keys, sort, then emit",
					sink)
			}
			return true
		})
	}
	return nil
}

// outputSink returns the name of the first output-sink call anywhere in a
// map-range body, or "". Nested loops are descended into: a sink inside an
// inner slice range still emits in the outer map's order. (The sorted-
// emission fix pattern is not nested — keys are collected in one loop and
// emitted in a separate one over the sorted slice.)
func outputSink(pass *Pass, body *ast.BlockStmt) string {
	sink := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sinkMethods[pkg][fn.Name()] {
				sink = "(" + pkg + ")." + fn.Name()
			}
			return true
		}
		if sinkFuncs[pkg][fn.Name()] {
			sink = pkg + "." + fn.Name()
		}
		return true
	})
	return sink
}
