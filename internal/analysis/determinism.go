package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// deterministicPkgs are the packages whose behaviour must be a pure
// function of their inputs: replay-based forking re-executes a RunFunc
// from scratch and replays recorded branch decisions, so any wall-clock,
// PRNG, goroutine-scheduling or map-order dependence on these paths makes
// a recorded prefix diverge from its replay and silently corrupts the
// exploration. internal/harness and internal/fuzz are the sanctioned
// homes for timing and randomness (campaign budgets, fuzzing) and are
// deliberately not listed; cmd/ and examples/ are presentation layers.
// internal/obs is likewise exempt: it is a wall-clock side channel by
// design (span timing), and its contract — nothing observable flows back
// into an exploration — is what keeps the scoped packages that call into
// it deterministic (see internal/obs and TestDeterminismObsExempt).
var deterministicPkgs = []string{
	"symriscv/internal/bitblast",
	"symriscv/internal/core",
	"symriscv/internal/cosim",
	"symriscv/internal/faults",
	"symriscv/internal/iss",
	"symriscv/internal/microrv32",
	"symriscv/internal/pipecore",
	"symriscv/internal/querycache",
	"symriscv/internal/riscv",
	"symriscv/internal/rtl",
	"symriscv/internal/rvfi",
	"symriscv/internal/sat",
	"symriscv/internal/smt",
	"symriscv/internal/smtlib",
	"symriscv/internal/solver",
}

func inDeterministicScope(pkgPath string) bool {
	for _, p := range deterministicPkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// forbiddenTimeFuncs are the wall-clock entry points of package time.
// Pure-value helpers (time.Duration arithmetic, ParseDuration) are fine.
var forbiddenTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// Determinism reports wall-clock calls, math/rand imports, goroutine
// launches and order-sensitive map iteration inside the deterministic
// kernel packages.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/math.rand/goroutines/order-sensitive map iteration in the deterministic kernel " +
		"(replay-based forking requires runs to be bit-for-bit repeatable)",
	Run: runDeterminism,
}

func runDeterminism(pass *Pass) error {
	if !inDeterministicScope(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch strings.Trim(imp.Path.Value, `"`) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(),
					"import of %s in deterministic package %s: use a seeded in-package PRNG or move the randomness to internal/harness or internal/fuzz",
					strings.Trim(imp.Path.Value, `"`), pass.PkgPath)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"goroutine launch in deterministic package %s: goroutine scheduling breaks replay determinism; parallelise at the harness level (independent explorations) instead",
					pass.PkgPath)
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
					fn.Pkg().Path() == "time" && forbiddenTimeFuncs[fn.Name()] {
					pass.Reportf(n.Pos(),
						"call to time.%s in deterministic package %s: wall-clock must not influence exploration; budget timing belongs in internal/harness",
						fn.Name(), pass.PkgPath)
				}
			case *ast.RangeStmt:
				checkMapRange(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkMapRange flags `for ... range m` over a map when the loop body has
// effects whose outcome depends on iteration order. Pure accumulation
// (counting, summing, writing into another map, deleting) is order-
// insensitive and allowed.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if reason := orderSensitiveEffect(pass, rng.Body); reason != "" {
		pass.Reportf(rng.Pos(),
			"iteration over map with order-dependent effect (%s) in deterministic package %s: iterate sorted keys instead",
			reason, pass.PkgPath)
	}
}

// orderSensitiveEffect scans a map-range body for constructs whose result
// depends on which key comes first. It returns a short description of the
// first such construct, or "".
func orderSensitiveEffect(pass *Pass, body *ast.BlockStmt) string {
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			reason = "early return selects an arbitrary element"
		case *ast.BranchStmt:
			// A break makes the set of visited keys order-dependent;
			// continue/goto/labels inside the body are fine.
			if n.Tok.String() == "break" {
				reason = "break selects an arbitrary prefix of the keys"
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					reason = "append builds a slice in map order"
					return false
				}
			}
			if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
				strings.HasPrefix(fn.Pkg().Path(), "symriscv/") {
				// Calls into our own packages can allocate term IDs, SAT
				// variables or branch-log entries, all of which are
				// order-visible state.
				reason = "call to " + fn.Pkg().Name() + "." + fn.Name() + " has order-visible effects (IDs, branch log)"
				return false
			}
		case *ast.SendStmt:
			reason = "channel send in map order"
		}
		return true
	})
	return reason
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for builtins, conversions and calls through function values.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pass.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := pass.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
