// Package fixture exercises the hashcons analyzer: raw smt.Term
// construction outside internal/smt breaks the voter's pointer-equality
// fast path.
package fixture

import "symriscv/internal/smt"

func rawLiteral() smt.Term {
	return smt.Term{} // want `composite literal of smt\.Term`
}

func rawAlloc() *smt.Term {
	return new(smt.Term) // want `new\(smt\.Term\)`
}

func mutate(p *smt.Term, v smt.Term) {
	*p = v // want `assignment through \*smt\.Term`
}

// viaContext builds terms the sanctioned way: allowed.
func viaContext(ctx *smt.Context) *smt.Term {
	return ctx.Add(ctx.BV(32, 1), ctx.BV(32, 2))
}

// pointers may be copied and compared freely; only the pointee is immutable.
func compare(a, b *smt.Term) bool {
	return a == b
}
