// Package fixture exercises the checkederr analyzer: error returns of
// symriscv APIs must be checked or explicitly dropped.
package fixture

import (
	"io"

	"symriscv/internal/smtlib"
)

func dropped(in *smtlib.Interp) {
	in.Run("(exit)") // want `result of smtlib\.Run discarded`
}

// checked propagates the error: allowed.
func checked(in *smtlib.Interp) error {
	return in.Run("(exit)")
}

// explicitDiscard documents intent with a blank assignment: allowed.
func explicitDiscard() {
	_ = smtlib.NewInterp(io.Discard).Run("(exit)")
}
