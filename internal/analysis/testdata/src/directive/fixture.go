// Package fixture exercises //symlint:allow directive handling; the test
// asserts diagnostic counts programmatically (a malformed directive and a
// want comment cannot share a line).
package fixture

import "time"

// justified: the directive carries a reason, so the determinism diagnostic
// on this line is suppressed.
func justified() time.Time {
	return time.Now() //symlint:allow determinism -- fixture: testing justified suppression
}

// unjustified: no "-- reason", so the directive itself is reported and the
// determinism diagnostic still fires.
func unjustified() time.Time {
	return time.Now() //symlint:allow determinism
}

// uncovered: no directive at all.
func uncovered(start time.Time) time.Duration {
	return time.Since(start)
}
