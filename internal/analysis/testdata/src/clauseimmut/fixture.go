// Package fixture exercises the clauseimmut analyzer: []sat.Lit slices
// received across a package boundary alias the solver's clause database
// and must not be mutated in place.
package fixture

import (
	"sort"

	"symriscv/internal/sat"
)

func writeShared(shared []sat.Lit) {
	shared[0] = shared[1] // want `write into shared \[\]sat\.Lit`
}

func copyIntoShared(dst, src []sat.Lit) {
	copy(dst, src) // want `copy into shared \[\]sat\.Lit`
}

func appendShared(shared []sat.Lit, l sat.Lit) []sat.Lit {
	return append(shared, l) // want `append to shared \[\]sat\.Lit`
}

func sortShared(shared []sat.Lit) {
	sort.Slice(shared, func(i, j int) bool { return shared[i] < shared[j] }) // want `in-place sort\.Slice on shared \[\]sat\.Lit`
}

// ownedWrite mutates a slice this function allocated itself: allowed.
func ownedWrite(l sat.Lit) sat.Lit {
	buf := make([]sat.Lit, 2)
	buf[0] = l
	buf[1] = buf[0]
	return buf[1]
}

// cloneThenMutate is the sanctioned pattern for editing a foreign clause.
func cloneThenMutate(shared []sat.Lit) []sat.Lit {
	own := append([]sat.Lit(nil), shared...)
	own[0] = own[0] ^ 1
	return own
}

// growSelf uses the self-append idiom x = append(x, ...): allowed, append
// reallocates before writing when capacity is exhausted and the result
// replaces the only local alias.
func growSelf(shared []sat.Lit, l sat.Lit) []sat.Lit {
	shared = append(shared, l)
	return shared
}
