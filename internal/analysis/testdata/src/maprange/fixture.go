// Package fixture exercises the maprange analyzer. Unlike determinism,
// maprange is repo-wide — the import path the harness loads it under does
// not matter.
package fixture

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

func printDirect(m map[string]int) {
	for k, v := range m { // want `map iteration feeds output sink fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func fprintToWriter(w io.Writer, m map[string]int) {
	for k := range m { // want `map iteration feeds output sink fmt\.Fprintln`
		fmt.Fprintln(w, k)
	}
}

func jsonlRecords(w io.Writer, m map[string]int) error {
	enc := json.NewEncoder(w)
	for k, v := range m { // want `map iteration feeds output sink \(encoding/json\)\.Encode`
		if err := enc.Encode(struct {
			K string
			V int
		}{k, v}); err != nil {
			return err
		}
	}
	return nil
}

func buildReport(m map[string]int) string {
	var b strings.Builder
	for k := range m { // want `map iteration feeds output sink \(strings\)\.WriteString`
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}

// sinkInInnerLoop still emits in the outer map's order: the nested slice
// range does not launder the nondeterminism.
func sinkInInnerLoop(m map[string][]string) {
	for _, vs := range m { // want `map iteration feeds output sink fmt\.Println`
		for _, v := range vs {
			fmt.Println(v)
		}
	}
}

func stderrDump(m map[string]int) {
	for k := range m { // want `map iteration feeds output sink \(os\)\.WriteString`
		os.Stderr.WriteString(k)
	}
}

// sortedEmission is the sanctioned fix pattern: collect, sort elsewhere,
// then range over the slice. The collection loop has no sink and the
// emission loop is not a map range.
func sortedEmission(w io.Writer, m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// (caller sorts keys)
	for _, k := range keys {
		fmt.Fprintln(w, k, m[k])
	}
}

// pureAccumulation never produces bytes: allowed.
func pureAccumulation(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// sprintfIntoMap formats values but writes them into another map: the
// formatting is order-insensitive, allowed.
func sprintfIntoMap(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = fmt.Sprintf("%d", v)
	}
	return out
}

// allowedDebugDump is covered by a symlint allow directive.
func allowedDebugDump(m map[string]int) {
	//symlint:allow maprange -- debug-only dump, order irrelevant
	for k := range m {
		fmt.Println(k)
	}
}
