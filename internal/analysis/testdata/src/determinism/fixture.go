// Package fixture exercises the determinism analyzer. It is loaded under a
// deterministic-kernel import path by the test harness; the go tool never
// builds it (testdata).
package fixture

import (
	"math/rand" // want `import of math/rand in deterministic package`
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `call to time\.Now in deterministic package`
}

func sleepy(d time.Duration) {
	time.Sleep(d) // want `call to time\.Sleep in deterministic package`
}

func launch() int {
	go func() {}() // want `goroutine launch in deterministic package`
	return rand.Int()
}

func collectKeys(m map[string]int) []string {
	var keys []string
	for k := range m { // want `iteration over map with order-dependent effect`
		keys = append(keys, k)
	}
	return keys
}

func pickAny(m map[string]int) string {
	for k := range m { // want `iteration over map with order-dependent effect`
		return k
	}
	return ""
}

// countEntries is order-insensitive map iteration: allowed.
func countEntries(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// invert writes into another map: order-insensitive, allowed (names are
// assumed unique by the caller).
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// durations only does time-value arithmetic: allowed.
func durations(d time.Duration) time.Duration {
	return d.Round(time.Millisecond) + time.Second
}
