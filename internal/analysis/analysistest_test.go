package analysis

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// runFixture loads the fixture package in testdata/src/<dir> under the given
// import path (the path places the fixture inside or outside analyzer
// scopes), runs the analyzers, and compares the diagnostics against the
// fixture's `// want `regexp“ trailing comments — the x/tools analysistest
// convention, reimplemented on the stdlib loader.
func runFixture(t *testing.T, dir, importPath string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s contains no Go files", dir)
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		t.Fatalf("run analyzers on %s: %v", dir, err)
	}

	type expect struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := make(map[string]map[int][]*expect) // file -> line -> expectations
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for rest = strings.TrimSpace(rest); rest != ""; rest = strings.TrimSpace(rest) {
					q, err := strconv.QuotedPrefix(rest)
					if err != nil {
						t.Fatalf("%s: malformed want comment: %q", pos, c.Text)
					}
					rest = rest[len(q):]
					pat, err := strconv.Unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					if wants[pos.Filename] == nil {
						wants[pos.Filename] = make(map[int][]*expect)
					}
					wants[pos.Filename][pos.Line] = append(wants[pos.Filename][pos.Line], &expect{re: re})
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, e := range wants[d.Pos.Filename][d.Pos.Line] {
			if !e.matched && e.re.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, e.re)
				}
			}
		}
	}
	return diags
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determinism", "symriscv/internal/core/fixture", Determinism)
}

// TestDeterminismOutOfScope re-runs the same fixture under a harness import
// path: no diagnostic may fire, so the want comments must all fail — assert
// that by checking the analyzer itself stays silent.
func TestDeterminismOutOfScope(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "determinism"), "symriscv/internal/harness/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("determinism fired outside its scope: %v", diags)
	}
}

// TestDeterminismParexploreExempt pins the parallel orchestrator's standing
// exemption: internal/parexplore launches worker goroutines by design (each
// owns a private solver context), so it must stay outside the determinism
// analyzer's scope. Its determinism story is the canonical Sig-ordered merge
// (see internal/parexplore), not goroutine freedom — the analyzer keeps
// guarding the kernel packages the workers are built from instead.
func TestDeterminismParexploreExempt(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "determinism"), "symriscv/internal/parexplore/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("determinism fired inside internal/parexplore, which must stay exempt: %v", diags)
	}
}

// TestDeterminismObsExempt pins the observability layer's standing
// exemption: internal/obs measures wall time (span durations) and merges
// shards under locks by design, so it must stay outside the determinism
// analyzer's scope. Its determinism story is the side-channel contract —
// no recorder state flows back into an exploration, so reports stay
// byte-identical with tracing on and off (see internal/obs) — while the
// scoped kernel packages that call into it keep being checked.
func TestDeterminismObsExempt(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "determinism"), "symriscv/internal/obs/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("determinism fired inside internal/obs, which must stay exempt: %v", diags)
	}
}

// TestDeterminismQuerycacheScope pins the query-elimination layer inside the
// determinism analyzer's scope: cache hits replace solver calls, so any
// wall-clock, PRNG or map-order dependence in internal/querycache would make
// replayed prefixes diverge exactly like a nondeterministic kernel package.
func TestDeterminismQuerycacheScope(t *testing.T) {
	runFixture(t, "determinism", "symriscv/internal/querycache/fixture", Determinism)
}

func TestHashConsFixture(t *testing.T) {
	runFixture(t, "hashcons", "symriscv/internal/cosim/fixture", HashCons)
}

func TestClauseImmutFixture(t *testing.T) {
	runFixture(t, "clauseimmut", "symriscv/internal/bitblast/fixture", ClauseImmut)
}

func TestCheckedErrFixture(t *testing.T) {
	runFixture(t, "checkederr", "symriscv/internal/harness/fixture", CheckedErr)
}

// TestMapRangeFixture loads the fixture under a presentation-layer import
// path on purpose: maprange is repo-wide, unlike the kernel-scoped
// determinism analyzer.
func TestMapRangeFixture(t *testing.T) {
	runFixture(t, "maprange", "symriscv/internal/harness/fixture", MapRange)
}

// TestDirectiveFixture checks suppression semantics: a justified directive
// silences exactly its analyzer on its line (and the next), an unjustified
// one is itself reported and suppresses nothing.
func TestDirectiveFixture(t *testing.T) {
	pkg, err := NewLoader().LoadDir(filepath.Join("testdata", "src", "directive"), "symriscv/internal/core/fixture")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := Run(pkg, []*Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	// justified() suppresses its time.Now; unjustified() leaks both the
	// malformed-directive report and the undampened determinism diagnostic;
	// uncovered() reports its time.Since.
	if counts["directive"] != 1 {
		t.Errorf("want 1 directive diagnostic, got %d: %v", counts["directive"], diags)
	}
	if counts["determinism"] != 2 {
		t.Errorf("want 2 determinism diagnostics, got %d: %v", counts["determinism"], diags)
	}
}

// TestDiagnosticOrdering checks the driver sorts by position.
func TestDiagnosticOrdering(t *testing.T) {
	diags := runFixture(t, "determinism", "symriscv/internal/core/fixture", Determinism)
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Pos, diags[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
	var zero token.Position
	for _, d := range diags {
		if d.Pos == zero {
			t.Errorf("diagnostic without position: %s", d)
		}
	}
}
