package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CheckedErr reports call statements that silently discard an error
// returned by one of this module's own APIs. The solver and engine report
// resource exhaustion and malformed input through error returns; dropping
// one on the floor turns a solver abort into a bogus "verified" verdict.
// An explicit `_ = f()` assignment is the sanctioned way to discard an
// error deliberately (it survives review; a bare call does not).
var CheckedErr = &Analyzer{
	Name: "checkederr",
	Doc: "forbid discarding errors returned by symriscv APIs " +
		"(a dropped solver error becomes a bogus verification verdict)",
	Run: runCheckedErr,
}

func runCheckedErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || !strings.HasPrefix(fn.Pkg().Path(), "symriscv/") {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Results().Len() == 0 {
				return true
			}
			last := sig.Results().At(sig.Results().Len() - 1).Type()
			if !isErrorType(last) {
				return true
			}
			pass.Reportf(call.Pos(),
				"result of %s.%s discarded: the error return must be checked (or explicitly dropped with `_ =`)",
				fn.Pkg().Name(), fn.Name())
			return true
		})
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() == nil && obj.Name() == "error"
}
