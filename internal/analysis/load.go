package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "symriscv/internal/smt"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader parses and type-checks packages of one module using only the
// standard library: go/parser for syntax and the go/importer "source"
// importer for dependencies (which resolves intra-module import paths
// through go/build, so no go/packages dependency is needed).
type Loader struct {
	fset *token.FileSet
	imp  types.Importer
}

// NewLoader returns a loader with a shared file set and importer cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{fset: fset, imp: importer.ForCompiler(fset, "source", nil)}
}

// LoadModule loads the packages of the module rooted at root selected by
// patterns. Supported patterns: "./..." (every package under root) and
// explicit relative directories like "./internal/smt". An empty pattern
// list behaves like "./...". Test files (_test.go) and testdata trees are
// never loaded: symlint checks the shipped tree, and fixtures under
// testdata deliberately contain violations.
func (l *Loader) LoadModule(root string, patterns []string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}

	var dirs []string
	wantAll := len(patterns) == 0
	for _, p := range patterns {
		if p == "./..." || p == "..." {
			wantAll = true
		}
	}
	if wantAll {
		dirs, err = packageDirs(root)
		if err != nil {
			return nil, err
		}
	} else {
		for _, p := range patterns {
			if strings.HasSuffix(p, "/...") {
				sub, err := packageDirs(filepath.Join(root, strings.TrimSuffix(p, "/...")))
				if err != nil {
					return nil, err
				}
				dirs = append(dirs, sub...)
				continue
			}
			dirs = append(dirs, filepath.Join(root, p))
		}
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.LoadDir(dir, path)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	return pkgs, nil
}

// LoadDir parses and type-checks the single package in dir under the given
// import path. It returns (nil, nil) when the directory contains no
// non-test Go files.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("symlint must run at a module root: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s/go.mod", root)
}

// packageDirs returns every directory under root holding non-test Go files,
// skipping hidden directories, testdata trees and underscore-prefixed dirs
// (the go tool's own exclusion rules).
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") && !strings.HasSuffix(d.Name(), "_test.go") {
			dir := filepath.Dir(p)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}
