package analysis

import (
	"go/ast"
	"go/types"
)

const satPkgPath = "symriscv/internal/sat"

// ClauseImmut reports mutation of []sat.Lit slices that the current
// function does not own. Clause literal slices are shared aggressively:
// the SAT solver's clause database aliases learnt slices, and the
// bit-blaster hands out its cached per-term bit slices by reference.
// Writing into such a slice (index assignment, copy, in-place sort, or an
// append whose result is discarded into a different variable) corrupts
// state owned by another package. A function owns a slice only if it
// created it locally via make, a composite literal, or append-growth of
// an owned slice.
var ClauseImmut = &Analyzer{
	Name: "clauseimmut",
	Doc: "forbid mutation of shared []sat.Lit clause slices outside internal/sat " +
		"(clause databases and bit-blaster caches alias their slices)",
	Run: runClauseImmut,
}

func runClauseImmut(pass *Pass) error {
	if isPkgUnder(pass.PkgPath, satPkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		owned := collectOwnedLitSlices(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkLitIndexAssign(pass, owned, n)
			case *ast.CallExpr:
				checkLitCall(pass, owned, f, n)
			}
			return true
		})
	}
	return nil
}

// isLitSlice reports whether t is []sat.Lit (by the named element type's
// package path and name, so fixtures importing the real package match).
func isLitSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	named, ok := sl.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Lit" &&
		obj.Pkg() != nil && obj.Pkg().Path() == satPkgPath
}

// collectOwnedLitSlices computes, per file, the set of local []sat.Lit
// variables provably created by the enclosing function: initialized from
// make, a composite literal, nil, or append-growth of an owned slice, and
// never reassigned from a foreign source. The analysis runs to a fixpoint
// so append chains resolve regardless of statement order.
func collectOwnedLitSlices(pass *Pass, f *ast.File) map[*types.Var]bool {
	type evidence struct{ ownedInit, foreignInit bool }
	ev := make(map[*types.Var]*evidence)
	var assigns []struct {
		v   *types.Var
		rhs ast.Expr
	}

	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := pass.Info.Defs[id]
		if obj == nil {
			obj = pass.Info.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || !isLitSlice(v.Type()) || v.IsField() {
			return
		}
		if ev[v] == nil {
			ev[v] = &evidence{}
		}
		assigns = append(assigns, struct {
			v   *types.Var
			rhs ast.Expr
		}{v, rhs})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, n.Rhs[i])
					}
				}
			} else {
				// Multi-value assignment from a call: foreign.
				for _, lhs := range n.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						record(id, nil)
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				} else if len(n.Values) == 0 {
					// var x []sat.Lit — zero value, owned.
					rhs = ast.NewIdent("nil")
				}
				record(id, rhs)
			}
		case *ast.RangeStmt:
			if id, ok := ast.Unparen(n.Value).(*ast.Ident); ok && n.Value != nil {
				record(id, nil) // range element: foreign
			}
		}
		return true
	})

	owned := make(map[*types.Var]bool)
	// Fixpoint: a variable is owned when every recorded assignment to it is
	// an owning expression under the current owned set.
	for changed := true; changed; {
		changed = false
		next := make(map[*types.Var]bool)
		for v := range ev {
			allOwned := true
			for _, a := range assigns {
				if a.v != v {
					continue
				}
				if !isOwningExpr(pass, owned, a.rhs) {
					allOwned = false
					break
				}
			}
			next[v] = allOwned
		}
		for v, o := range next {
			if owned[v] != o {
				owned[v] = o
				changed = true
			}
		}
	}
	return owned
}

// isOwningExpr reports whether rhs yields a freshly created slice under
// the current owned set.
func isOwningExpr(pass *Pass, owned map[*types.Var]bool, rhs ast.Expr) bool {
	if rhs == nil {
		return false
	}
	switch e := ast.Unparen(rhs).(type) {
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		if v, ok := pass.Info.Uses[e].(*types.Var); ok {
			return owned[v]
		}
		return false
	case *ast.CompositeLit:
		return true
	case *ast.SliceExpr:
		return isOwningExpr(pass, owned, e.X)
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				switch id.Name {
				case "make":
					return true
				case "append":
					return len(e.Args) > 0 && isOwningExpr(pass, owned, e.Args[0])
				}
				return false
			}
		}
		// A conversion carries its operand's ownership (the clone idiom
		// append([]sat.Lit(nil), shared...) starts from an owned nil).
		if tv, ok := pass.Info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return isOwningExpr(pass, owned, e.Args[0])
		}
		// A call into the same package returns a slice that package owns;
		// the invariant polices the package boundary, not intra-package
		// helper plumbing (e.g. the bit-blaster's own adder/negBits).
		if fn := calleeFunc(pass, e); fn != nil && fn.Pkg() == pass.Pkg {
			return true
		}
	}
	return false
}

// checkLitIndexAssign flags `x[i] = v` where x is a []sat.Lit the function
// does not own.
func checkLitIndexAssign(pass *Pass, owned map[*types.Var]bool, n *ast.AssignStmt) {
	for _, lhs := range n.Lhs {
		idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
		if !ok || !isLitSlice(pass.TypeOf(idx.X)) {
			continue
		}
		if isOwningExpr(pass, owned, idx.X) {
			continue
		}
		pass.Reportf(lhs.Pos(),
			"write into shared []sat.Lit slice outside %s: clause slices alias the solver's database and the bit-blaster's caches; copy before mutating",
			satPkgPath)
	}
}

// checkLitCall flags copy/sort/append misuse on foreign []sat.Lit slices.
func checkLitCall(pass *Pass, owned map[*types.Var]bool, f *ast.File, call *ast.CallExpr) {
	ownedArg := func(e ast.Expr) bool { return isOwningExpr(pass, owned, e) }

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy":
				if len(call.Args) == 2 && isLitSlice(pass.TypeOf(call.Args[0])) && !ownedArg(call.Args[0]) {
					pass.Reportf(call.Pos(),
						"copy into shared []sat.Lit slice outside %s: destination aliases solver/bit-blaster state",
						satPkgPath)
				}
			case "append":
				if len(call.Args) > 0 && isLitSlice(pass.TypeOf(call.Args[0])) &&
					!ownedArg(call.Args[0]) && !isSelfAppend(pass, f, call) {
					pass.Reportf(call.Pos(),
						"append to shared []sat.Lit slice outside %s: may write through the shared backing array; copy first",
						satPkgPath)
				}
			}
			return
		}
	}
	// In-place library sorts/reversals on a foreign clause slice.
	if fn := calleeFunc(pass, call); fn != nil && fn.Pkg() != nil {
		switch fn.Pkg().Path() {
		case "sort", "slices":
			for _, arg := range call.Args {
				if isLitSlice(pass.TypeOf(arg)) && !ownedArg(arg) {
					pass.Reportf(call.Pos(),
						"in-place %s.%s on shared []sat.Lit slice outside %s: copy before sorting",
						fn.Pkg().Name(), fn.Name(), satPkgPath)
				}
			}
		}
	}
}

// isSelfAppend reports whether the append call is the canonical grow idiom
// `x = append(x, ...)`: the result is assigned back to the same lvalue it
// grows, which replaces the old value rather than mutating a reader's view.
func isSelfAppend(pass *Pass, f *ast.File, call *ast.CallExpr) bool {
	self := false
	ast.Inspect(f, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || self {
			return !self
		}
		for i, rhs := range asg.Rhs {
			if ast.Unparen(rhs) == call && i < len(asg.Lhs) && len(call.Args) > 0 {
				if exprEqual(asg.Lhs[i], call.Args[0]) {
					self = true
				}
			}
		}
		return true
	})
	return self
}

// exprEqual structurally compares simple lvalue chains (idents, selectors,
// index expressions with ident/literal indices).
func exprEqual(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		return ok && x.Name == y.Name
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		return ok && x.Sel.Name == y.Sel.Name && exprEqual(x.X, y.X)
	case *ast.IndexExpr:
		y, ok := b.(*ast.IndexExpr)
		return ok && exprEqual(x.X, y.X) && exprEqual(x.Index, y.Index)
	case *ast.BasicLit:
		y, ok := b.(*ast.BasicLit)
		return ok && x.Value == y.Value
	}
	return false
}
