package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

const smtPkgPath = "symriscv/internal/smt"

// HashCons reports construction or mutation of smt.Term values outside
// internal/smt. Terms are hash-consed per Context: the engine's branch
// cache, the bit-blaster's memo tables and the voter's fast path all treat
// pointer equality as semantic equality. A term built with a composite
// literal or new(), or overwritten through its pointer, is not interned
// and silently breaks that contract.
var HashCons = &Analyzer{
	Name: "hashcons",
	Doc: "forbid smt.Term construction/mutation outside internal/smt " +
		"(pointer equality must imply semantic equality for the voter's fast path)",
	Run: runHashCons,
}

func runHashCons(pass *Pass) error {
	if isPkgUnder(pass.PkgPath, smtPkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if isSMTTerm(pass.TypeOf(n)) {
					pass.Reportf(n.Pos(),
						"composite literal of smt.Term outside %s: terms must be built through a Context (hash-consing) so pointer equality implies semantic equality",
						smtPkgPath)
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "new" && len(n.Args) == 1 {
					if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
						if isSMTTerm(pass.TypeOf(n.Args[0])) {
							pass.Reportf(n.Pos(),
								"new(smt.Term) outside %s: terms must be built through a Context (hash-consing)",
								smtPkgPath)
						}
					}
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
						if pt, ok := pass.TypeOf(star.X).(*types.Pointer); ok && isSMTTerm(pt.Elem()) {
							pass.Reportf(lhs.Pos(),
								"assignment through *smt.Term outside %s: interned terms are immutable; build a new term via the Context instead",
								smtPkgPath)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isSMTTerm reports whether t is the named struct type smt.Term. The type
// is matched by package path and name rather than identity so the check
// also works on fixture packages that import the real smt package.
func isSMTTerm(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Name() == "Term" &&
		obj.Pkg() != nil && obj.Pkg().Path() == smtPkgPath
}

// isPkgUnder reports whether path is pkg or a subpackage of pkg.
func isPkgUnder(path, pkg string) bool {
	return path == pkg || strings.HasPrefix(path, pkg+"/")
}
