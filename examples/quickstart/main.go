// Quickstart: inject a single RTL fault (E6 — BNE behaves like BEQ) into the
// MicroRV32 core model and let the symbolic co-simulation find it, printing
// the counterexample instruction and register values that expose the bug.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"
	"sort"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/rvfi"
)

func main() {
	// A clean, matched baseline: the repaired core against the repaired ISS,
	// with SYSTEM instructions excluded from generation (the paper's Table II
	// setup) — the only possible mismatch source is the injected fault.
	coreCfg := microrv32.FixedConfig()
	coreCfg.Faults = faults.Only(faults.E6)

	cfg := cosim.Config{
		ISS:        iss.FixedConfig(),
		Core:       coreCfg,
		Filter:     cosim.BlockSystemInstructions,
		InstrLimit: 1, // one fully symbolic instruction per path
	}

	fmt.Println("hunting injected fault E6:", faults.E6.Description())

	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{
		StopOnFirstFinding: true,
		MaxTime:            60 * time.Second,
	})

	if len(rep.Findings) == 0 {
		log.Fatalf("no mismatch found: %v", rep.Stats)
	}

	var m *rvfi.Mismatch
	if !errors.As(rep.Findings[0].Err, &m) {
		log.Fatalf("unexpected finding type: %v", rep.Findings[0].Err)
	}

	fmt.Printf("\nfound after %d paths / %d executed instructions (%s)\n",
		rep.Stats.Paths, rep.Stats.Instructions, rep.Stats.Elapsed.Round(time.Millisecond))
	fmt.Printf("  kind:        %s\n", m.Kind)
	fmt.Printf("  instruction: %s  (0x%08x)\n", m.Disasm, m.Insn)
	fmt.Printf("  RTL next PC: 0x%08x\n", m.RTLNext)
	fmt.Printf("  ISS next PC: 0x%08x\n", m.ISSNext)
	fmt.Println("\nconcrete test vector (replay these inputs to reproduce):")
	regs := make([]string, 0, len(m.Env))
	for name := range m.Env {
		if len(name) > 4 && name[:4] == "reg_" {
			regs = append(regs, name)
		}
	}
	sort.Strings(regs)
	for _, name := range regs {
		fmt.Printf("  %-8s = 0x%08x\n", name[4:], m.Env[name])
	}
	fmt.Println("\nThe faulty core treats BNE as BEQ: with equal (or unequal) source")
	fmt.Println("registers the two models compute different next-PC values, which the")
	fmt.Println("voter proves satisfiable and turns into the test vector above.")
}
