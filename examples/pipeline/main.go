// Pipeline: the generality study as a runnable example. The same symbolic
// co-simulation testbench — unchanged voter, memories, sliced registers —
// verifies a completely different microarchitecture: the fetch-overlapped
// pipelined core of internal/pipecore. The example first shows the clean
// pipelined core agreeing with the reference ISS over the exhaustively
// explored one-instruction space, then injects the decode fault E0 and lets
// the engine find the reserved-encoding counterexample that random testing
// cannot generate.
//
// Run with: go run ./examples/pipeline
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/faults"
	"symriscv/internal/iss"
	"symriscv/internal/pipecore"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

func pipelineConfig(f faults.Set) cosim.Config {
	return cosim.Config{
		ISS:    iss.FixedConfig(),
		Filter: cosim.BlockSystemInstructions,
		NewDUT: func(eng *core.Engine) cosim.DUT {
			return pipecore.New(eng, pipecore.Config{Faults: f})
		},
	}
}

func main() {
	fmt.Println("== 1. clean pipelined core vs reference ISS (exhaustive, 1 instruction)")
	x := core.NewExplorer(cosim.RunFunc(pipelineConfig(faults.None)))
	rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		log.Fatalf("unexpected divergence: %v", rep.Findings[0].Err)
	}
	fmt.Printf("   agreement over the full space: %v (exhausted=%v)\n\n", rep.Stats, rep.Exhausted)

	fmt.Println("== 2. inject E0:", faults.E0.Description())
	x = core.NewExplorer(cosim.RunFunc(pipelineConfig(faults.Only(faults.E0))))
	rep = x.Explore(core.Options{StopOnFirstFinding: true, MaxTime: 120 * time.Second})
	if len(rep.Findings) == 0 {
		log.Fatalf("E0 not found: %v", rep.Stats)
	}
	var m *rvfi.Mismatch
	if !errors.As(rep.Findings[0].Err, &m) {
		log.Fatalf("unexpected finding: %v", rep.Findings[0].Err)
	}
	fmt.Printf("   found in %s after %d paths\n", rep.Stats.Elapsed.Round(time.Millisecond), rep.Stats.Paths)
	fmt.Printf("   witness: %s (word 0x%08x)\n", m.Disasm, m.Insn)
	fmt.Printf("   bit 25 set: %v — the RV32-reserved shift encoding the faulty\n", m.Insn>>25&1 == 1)
	fmt.Println("   decode table mis-accepts as SLLI while the ISS raises illegal-instruction.")
	in := riscv.Decode(m.Insn)
	fmt.Printf("   (strict decode classifies the word as %q)\n", in.Mn)
}
