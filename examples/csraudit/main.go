// CSR audit: run the Table I campaign probes against the as-shipped
// MicroRV32 and VP ISS and print the classified error/mismatch catalogue —
// the reproduction of the paper's §V-A case study.
//
// Run with: go run ./examples/csraudit
package main

import (
	"fmt"
	"time"

	"symriscv/internal/harness"
)

func main() {
	fmt.Println("auditing the as-shipped MicroRV32 against the as-shipped RISC-V VP ISS ...")
	res := harness.RunTable1(harness.Table1Options{
		PerProbeTime: 60 * time.Second,
	})
	fmt.Println()
	fmt.Print(res.Format())

	counts := map[harness.Verdict]int{}
	for _, row := range res.Rows {
		counts[row.Class.R]++
	}
	fmt.Printf("\nRTL-core errors (E): %d   ISS errors (E*): %d   implementation mismatches (M): %d\n",
		counts[harness.VerdictRTLError], counts[harness.VerdictISSError], counts[harness.VerdictMismatch])
	fmt.Printf("campaign wall time: %s\n", res.Elapsed.Round(time.Millisecond))
}
