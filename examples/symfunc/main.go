// Symfunc: the symbolic execution engine used standalone, KLEE-tutorial
// style, without the processor co-simulation. It explores a small function
// over a symbolic input, enumerates its paths, generates one concrete test
// vector per path, and finds an injected overflow bug.
//
// Run with: go run ./examples/symfunc
package main

import (
	"fmt"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/smt"
)

// sign classifies x like the classic KLEE tutorial function, but the
// "absolute value" it computes on the negative arm overflows for INT32_MIN —
// the bug the engine should find.
func sign(e *core.Engine, x *smt.Term) (string, *smt.Term) {
	ctx := e.Context()
	zero := ctx.BV(32, 0)
	if e.Branch(ctx.Eq(x, zero)) {
		return "zero", zero
	}
	if e.Branch(ctx.Slt(x, zero)) {
		abs := ctx.Neg(x) // overflows for 0x80000000
		return "negative", abs
	}
	return "positive", x
}

func main() {
	type pathInfo struct {
		label string
		x     uint64
	}
	var paths []pathInfo
	var bug *core.Finding

	x := core.NewExplorer(func(e *core.Engine) error {
		ctx := e.Context()
		xv := e.MakeSymbolic("x", 32)
		label, abs := sign(e, xv)

		// Assertion: the computed magnitude is never negative.
		if label == "negative" {
			if env, ok := e.FindWitness(ctx.Slt(abs, ctx.BV(32, 0))); ok {
				return assertionErr{env}
			}
		}
		if m, ok := e.PathModel(); ok {
			paths = append(paths, pathInfo{label, m["x"]})
		}
		return nil
	})

	rep := x.Explore(core.Options{MaxTime: 30 * time.Second})
	fmt.Printf("exploration: %v\n\n", rep.Stats)

	fmt.Println("paths and generated test vectors:")
	for _, p := range paths {
		fmt.Printf("  %-9s x = 0x%08x (%d)\n", p.label, p.x, int32(p.x))
	}
	if len(rep.Findings) > 0 {
		bug = &rep.Findings[0]
		fmt.Printf("\nassertion violated: |x| < 0 is satisfiable for x = 0x%08x\n", bug.Inputs["x"])
		fmt.Println("(two's-complement negation of INT32_MIN overflows — found by the")
		fmt.Println(" same FindWitness query the co-simulation voter uses)")
	} else {
		fmt.Println("\nno assertion violation found (unexpected)")
	}
}

type assertionErr struct{ env smt.MapEnv }

func (a assertionErr) Error() string       { return "assertion violated: abs(x) < 0" }
func (a assertionErr) Witness() smt.MapEnv { return a.env }
