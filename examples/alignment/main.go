// Alignment walk-through: demonstrates how the misaligned load/store
// mismatches of Table I are discovered. The shipped MicroRV32 fully supports
// misaligned accesses (splitting them over two bus words) while the VP ISS
// raises address-misaligned traps — both are legal RISC-V implementations,
// which is exactly why cross-level mismatch detection matters.
//
// Run with: go run ./examples/alignment
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

func main() {
	// Constrain generation to the LOAD opcode so the exploration focuses on
	// the alignment behaviour (the paper's klee_assume scenario steering).
	cfg := cosim.Config{
		ISS:        iss.VPConfig(),
		Core:       microrv32.ShippedConfig(),
		Filter:     cosim.OnlyOpcode(riscv.OpLoad),
		InstrLimit: 1,
	}

	fmt.Println("exploring the LOAD instruction class: shipped core (misaligned OK)")
	fmt.Println("vs VP ISS (misaligned traps) ...")

	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 60 * time.Second})

	fmt.Printf("\n%v\n\n", rep.Stats)
	if len(rep.Findings) == 0 {
		log.Fatal("expected misalignment mismatches, found none")
	}

	seen := map[string]bool{}
	for _, f := range rep.Findings {
		var m *rvfi.Mismatch
		if !errors.As(f.Err, &m) {
			continue
		}
		mn := riscv.Decode(m.Insn).Mn.String()
		if seen[mn] {
			continue
		}
		seen[mn] = true
		fmt.Printf("%-5s %-26s RTL trap=%-5v ISS trap=%-5v  ea witness: rs1+imm misaligned\n",
			mn, m.Disasm, m.RTLTrap, m.ISSTrap)
	}
	fmt.Println("\nEach row is one instruction whose effective address the engine could")
	fmt.Println("steer onto a misaligned value: the ISS branches on the alignment check,")
	fmt.Println("the RTL core's lane-select mux forks over the low address bits, and the")
	fmt.Println("voter proves the trap disagreement satisfiable.")
}
