// Interrupts: the privileged-architecture extension of the methodology. A
// symbolic machine-external-interrupt line (one 1-bit input per instruction
// slot) and symbolic initial mstatus/mie values drive both models; the
// example first shows the matched pair agreeing over the whole
// taken/not-taken interrupt space, then injects a missing-MIE-gate fault
// into the core and prints the witness the engine finds: the line asserted,
// MEIE set, but the global MIE disabled — exactly the case the buggy core
// mishandles.
//
// Run with: go run ./examples/interrupts
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"symriscv/internal/core"
	"symriscv/internal/cosim"
	"symriscv/internal/iss"
	"symriscv/internal/microrv32"
	"symriscv/internal/riscv"
	"symriscv/internal/rvfi"
)

func config() cosim.Config {
	return cosim.Config{
		ISS:                iss.FixedConfig(),
		Core:               microrv32.FixedConfig(),
		Filter:             cosim.BlockSystemInstructions,
		SymbolicInterrupts: true,
		StartPC:            0x100, // keep the trap vector (0) distinct
	}
}

func main() {
	fmt.Println("== 1. matched models under a symbolic interrupt line (OP-IMM class)")
	cfg := config()
	cfg.Filter = cosim.Filters(cfg.Filter, cosim.OnlyOpcode(riscv.OpImm))
	x := core.NewExplorer(cosim.RunFunc(cfg))
	rep := x.Explore(core.Options{MaxTime: 120 * time.Second})
	if len(rep.Findings) != 0 {
		log.Fatalf("unexpected divergence: %v", rep.Findings[0].Err)
	}
	fmt.Printf("   agreement across taken/not-taken interrupt subtrees: %v\n\n", rep.Stats)

	fmt.Println("== 2. inject the missing-MIE-gate fault")
	bad := config()
	bad.Core.IgnoreMIEBug = true
	x = core.NewExplorer(cosim.RunFunc(bad))
	rep = x.Explore(core.Options{StopOnFirstFinding: true, MaxTime: 120 * time.Second})
	if len(rep.Findings) == 0 {
		log.Fatal("fault not found")
	}
	var m *rvfi.Mismatch
	if !errors.As(rep.Findings[0].Err, &m) {
		log.Fatalf("unexpected finding: %v", rep.Findings[0].Err)
	}
	fmt.Printf("   found after %d paths: %v\n", rep.Stats.Paths, m)
	fmt.Printf("   witness: irq_0=%d  mie=0x%03x (MEIE=%d)  mstatus=0x%x (MIE=%d)\n",
		m.Env["irq_0"], m.Env["csr_mie"], m.Env["csr_mie"]>>11&1,
		m.Env["csr_mstatus"], m.Env["csr_mstatus"]>>3&1)
	fmt.Println("\nWith MIE clear the reference ISS ignores the asserted line while the")
	fmt.Println("buggy core vectors to the trap handler; the voter's old-PC comparison")
	fmt.Println("proves the divergence satisfiable and emits the assignment above.")
}
